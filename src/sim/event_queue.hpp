#pragma once
// Min-heap event queue for the virtual-time simulator. Events at equal
// timestamps are delivered in insertion order (the sequence number breaks
// ties), which keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gridpipe::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void push(double time, EventFn fn);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  /// Timestamp of the earliest event; undefined when empty.
  double next_time() const { return heap_.top().time; }

  /// Removes and returns the earliest event.
  struct Event {
    double time;
    std::uint64_t seq;
    EventFn fn;
  };
  Event pop();

  void clear();

 private:
  struct Compare {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Compare> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gridpipe::sim
