#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace gridpipe::sim {

void EventQueue::push(double time, EventFn fn) {
  if (!(time >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument("EventQueue: negative or NaN time");
  }
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

EventQueue::Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  // priority_queue::top() is const&; move via const_cast is the standard
  // idiom to avoid copying the std::function.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return event;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace gridpipe::sim
