#pragma once
// PipelineSim: executes a mapped pipeline over a Grid in virtual time.
//
// Semantics (matching the skeleton's contract):
//  * A stage processes one item at a time; co-mapped stages on a node
//    share it by serialization (one task in service per node).
//  * Items are admitted with a credit window (bounded in-flight count),
//    flow through stages in order, and replicated stages receive items
//    round-robin.
//  * Transfers between distinct nodes take latency + bytes/bandwidth at
//    the link's current congestion; loopback transfers use the loopback
//    link (~0.1 ms).
//  * apply_mapping() remaps live: queued tasks are redirected to the new
//    replicas and the whole pipeline freezes for the supplied migration
//    pause; in-service tasks finish and route onward under the new map.
//  * Every service completion and transfer feeds the monitoring registry
//    (passive observations); optional periodic probes emulate NWS-style
//    grid-wide sensors.

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_map>

#include "grid/grid.hpp"
#include "monitor/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "sched/perf_model.hpp"
#include "sched/replica_router.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gridpipe::sim {

struct SimConfig {
  std::uint64_t num_items = 1000;
  /// Max items concurrently inside the pipeline (0 = auto: 2·Ns, min 4).
  /// Only applies to the saturated (closed) arrival process.
  std::size_t window = 0;

  /// How inputs enter the pipeline.
  ///  kSaturated — closed loop: a completion admits the next item
  ///               (measures capacity; the default).
  ///  kPoisson   — open arrivals at `arrival_rate` items/s (measures
  ///               response time under offered load).
  ///  kPeriodic  — open arrivals every 1/arrival_rate seconds.
  enum class Arrivals { kSaturated, kPoisson, kPeriodic };
  Arrivals arrivals = Arrivals::kSaturated;
  double arrival_rate = 0.0;  ///< items/s for the open processes

  enum class ServiceModel { kDeterministic, kExponential };
  ServiceModel service_model = ServiceModel::kDeterministic;
  std::uint64_t seed = 1;

  /// Physically move inputs from profile.source_node and outputs to
  /// profile.sink_node (the calibration setup turns this off).
  bool apply_io_edges = false;
  /// Serialize transfers per directed link (FIFO link queue). On by
  /// default: this matches the analytic model's (and the PEPA network
  /// component's) view of a link as a serial resource. Turning it off
  /// models infinitely parallel pipes where latency delays items but
  /// never limits rate.
  bool serialize_links = true;
  /// On remap, abort tasks currently in service and restart them under
  /// the new mapping (stage progress is lost). Matches a restart-based
  /// migration protocol; without it a service started on a node that then
  /// collapses can stall the stream for its full (enormous) duration.
  bool abort_in_service_on_remap = true;

  /// Period of NWS-style grid-wide probes feeding the registry
  /// (0 disables; passive observations still flow).
  double probe_interval = 5.0;
  /// Probe every node/link, not just the ones in use.
  bool monitor_all = true;
  /// Relative Gaussian noise applied to probe observations.
  double probe_noise = 0.02;

  /// Telemetry sinks (both nullable = observability off). Spans carry
  /// the DES clock directly; a "stage" span's width is the sampled
  /// service time, a "hop" span's the transfer time.
  obs::Sinks obs{};
};

class PipelineSim {
 public:
  /// `registry` may be nullptr (static/naive runs need no monitor).
  PipelineSim(const grid::Grid& grid, sched::PipelineProfile profile,
              sched::Mapping initial_mapping, SimConfig config,
              monitor::MonitoringRegistry* registry = nullptr);

  /// Admits the initial window and starts probing. Call once before run.
  void start();

  /// Wires (or replaces) the registry that receives passive observations
  /// and probes. Must be called before start().
  void attach_registry(monitor::MonitoringRegistry* registry);

  Simulator& simulator() noexcept { return sim_; }
  const SimMetrics& metrics() const noexcept { return metrics_; }
  const sched::Mapping& mapping() const noexcept { return mapping_; }
  const sched::PipelineProfile& profile() const noexcept { return profile_; }

  bool finished() const noexcept {
    return metrics_.items_completed() == config_.num_items;
  }
  std::uint64_t in_flight() const noexcept { return in_flight_; }
  std::size_t queue_length(grid::NodeId node) const;

  /// Live remap: redirects queued tasks and freezes service starts for
  /// `pause` seconds of virtual time.
  void apply_mapping(const sched::Mapping& new_mapping, double pause);

 private:
  struct Task {
    std::size_t stage;
    std::uint64_t item;
    double created_at;
  };
  struct NodeState {
    std::deque<Task> queue;
    bool busy = false;
    /// Incremented to invalidate the completion event of an aborted
    /// service (remap-time restart semantics).
    std::uint64_t service_seq = 0;
    Task in_service{};  ///< valid while busy
  };

  void admit_next_item();
  void schedule_open_arrival();
  void enqueue_task(grid::NodeId node, Task task);
  void try_start(grid::NodeId node);
  void on_service_complete(grid::NodeId node, Task task, double duration);
  void route_onward(grid::NodeId from, Task task);
  void transfer(grid::NodeId from, grid::NodeId to, double bytes, Task task);
  void complete_item(const Task& task);
  void schedule_probe();
  double sample_service(std::size_t stage, grid::NodeId node);
  grid::NodeId pick_replica(std::size_t stage);

  Simulator sim_;
  const grid::Grid& grid_;
  sched::PipelineProfile profile_;
  sched::Mapping mapping_;
  SimConfig config_;
  monitor::MonitoringRegistry* registry_;
  SimMetrics metrics_;
  util::Xoshiro256 rng_;

  std::vector<NodeState> nodes_;
  sched::ReplicaRouter router_;
  /// Pre-resolved obs handles (all null when config_.obs.metrics is).
  obs::StandardMetrics obs_metrics_;
  /// "stage<i>" span names, built once when tracing (the profile carries
  /// no stage names; the span's `stage` arg holds the index regardless).
  std::vector<std::string> stage_names_;
  double freeze_until_ = 0.0;
  std::uint64_t next_item_ = 0;
  std::uint64_t in_flight_ = 0;
  bool started_ = false;
  std::unordered_map<std::uint64_t, double> link_busy_until_;
};

}  // namespace gridpipe::sim
