#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace gridpipe::sim {

PipelineSim::PipelineSim(const grid::Grid& grid,
                         sched::PipelineProfile profile,
                         sched::Mapping initial_mapping, SimConfig config,
                         monitor::MonitoringRegistry* registry)
    : grid_(grid),
      profile_(std::move(profile)),
      mapping_(std::move(initial_mapping)),
      config_(config),
      registry_(registry),
      rng_(config.seed) {
  profile_.validate();
  mapping_.validate(grid_.num_nodes());
  if (mapping_.num_stages() != profile_.num_stages()) {
    throw std::invalid_argument("PipelineSim: mapping/profile mismatch");
  }
  if (config_.window == 0) {
    config_.window = std::max<std::size_t>(4, 2 * profile_.num_stages());
  }
  nodes_.resize(grid_.num_nodes());
  router_.reset(profile_.num_stages());
  obs_metrics_.bind(config_.obs.metrics);
  if (config_.obs.tracer) {
    stage_names_.reserve(profile_.num_stages());
    for (std::size_t s = 0; s < profile_.num_stages(); ++s) {
      stage_names_.push_back("stage" + std::to_string(s));
    }
  }
}

void PipelineSim::attach_registry(monitor::MonitoringRegistry* registry) {
  if (started_) {
    throw std::logic_error("PipelineSim::attach_registry: already started");
  }
  registry_ = registry;
}

void PipelineSim::start() {
  if (started_) throw std::logic_error("PipelineSim::start: already started");
  started_ = true;
  if (config_.arrivals == SimConfig::Arrivals::kSaturated) {
    const std::uint64_t initial =
        std::min<std::uint64_t>(config_.window, config_.num_items);
    for (std::uint64_t i = 0; i < initial; ++i) admit_next_item();
  } else {
    if (config_.arrival_rate <= 0.0) {
      throw std::invalid_argument(
          "PipelineSim: open arrivals need arrival_rate > 0");
    }
    schedule_open_arrival();
  }
  if (registry_ && config_.probe_interval > 0.0 && config_.monitor_all) {
    schedule_probe();
  }
}

void PipelineSim::schedule_open_arrival() {
  if (next_item_ >= config_.num_items) return;
  const double gap =
      config_.arrivals == SimConfig::Arrivals::kPoisson
          ? util::exponential(rng_, config_.arrival_rate)
          : 1.0 / config_.arrival_rate;
  sim_.after(gap, [this] {
    admit_next_item();
    schedule_open_arrival();
  });
}

std::size_t PipelineSim::queue_length(grid::NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("queue_length");
  return nodes_[node].queue.size();
}

grid::NodeId PipelineSim::pick_replica(std::size_t stage) {
  return router_.pick(mapping_, stage);
}

void PipelineSim::admit_next_item() {
  if (next_item_ >= config_.num_items) return;
  const Task task{0, next_item_++, sim_.now()};
  metrics_.on_item_created(task.item, task.created_at);
  if (obs_metrics_.items_pushed) obs_metrics_.items_pushed->add(1);
  obs::record_span(config_.obs.tracer, obs::SpanKind::kAdmit, "admit",
                   task.created_at, 0.0, 0, task.item);
  ++in_flight_;
  const grid::NodeId dst = pick_replica(0);
  if (config_.apply_io_edges) {
    transfer(profile_.source_node, dst, profile_.msg_bytes[0], task);
  } else {
    enqueue_task(dst, task);
  }
}

void PipelineSim::enqueue_task(grid::NodeId node, Task task) {
  nodes_[node].queue.push_back(task);
  try_start(node);
}

void PipelineSim::try_start(grid::NodeId node) {
  NodeState& state = nodes_[node];
  if (state.busy || state.queue.empty()) return;
  if (sim_.now() < freeze_until_) return;  // remap freeze in effect
  const Task task = state.queue.front();
  state.queue.pop_front();
  state.busy = true;
  state.in_service = task;
  const std::uint64_t seq = state.service_seq;
  const double duration = sample_service(task.stage, node);
  sim_.after(duration, [this, node, task, duration, seq] {
    // A remap may have aborted this service; its completion is then void.
    if (nodes_[node].service_seq != seq) return;
    on_service_complete(node, task, duration);
  });
}

double PipelineSim::sample_service(std::size_t stage, grid::NodeId node) {
  const double mean =
      profile_.stage_work[stage] / grid_.effective_speed(node, sim_.now());
  if (config_.service_model == SimConfig::ServiceModel::kExponential) {
    return util::exponential(rng_, 1.0 / mean);
  }
  return mean;
}

void PipelineSim::on_service_complete(grid::NodeId node, Task task,
                                      double duration) {
  nodes_[node].busy = false;
  metrics_.on_service(task.stage, duration);
  obs::record_span(config_.obs.tracer, obs::SpanKind::kStage,
                   config_.obs.tracer ? stage_names_[task.stage].c_str()
                                      : "stage",
                   sim_.now() - duration, duration,
                   static_cast<std::uint32_t>(1 + node), task.item,
                   static_cast<std::uint32_t>(task.stage));
  if (obs_metrics_.stage_service) obs_metrics_.stage_service->record(duration);
  if (registry_ && duration > 0.0) {
    // Passive observation: the speed this node just delivered.
    registry_->record({monitor::SensorKind::kNodeSpeed, node, 0}, sim_.now(),
                      profile_.stage_work[task.stage] / duration);
  }
  route_onward(node, task);
  try_start(node);
}

void PipelineSim::route_onward(grid::NodeId from, Task task) {
  const std::size_t next_stage = task.stage + 1;
  if (next_stage == profile_.num_stages()) {
    if (config_.apply_io_edges && from != profile_.sink_node) {
      Task sink_task = task;
      sink_task.stage = next_stage;  // marker: heading to sink
      transfer(from, profile_.sink_node, profile_.msg_bytes[next_stage],
               sink_task);
    } else {
      complete_item(task);
    }
    return;
  }
  Task next = task;
  next.stage = next_stage;
  transfer(from, pick_replica(next_stage), profile_.msg_bytes[next_stage],
           next);
}

void PipelineSim::transfer(grid::NodeId from, grid::NodeId to, double bytes,
                           Task task) {
  const double requested = sim_.now();
  double depart = requested;
  if (config_.serialize_links && from != to) {
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    double& busy_until = link_busy_until_[key];
    depart = std::max(depart, busy_until);
    busy_until = depart + grid_.transfer_time(from, to, bytes, depart);
  }
  const double arrive = depart + grid_.transfer_time(from, to, bytes, depart);
  obs::record_span(config_.obs.tracer, obs::SpanKind::kWire, "hop", depart,
                   arrive - depart, static_cast<std::uint32_t>(1 + to),
                   task.item, static_cast<std::uint32_t>(task.stage));
  sim_.at(arrive, [this, from, to, bytes, task, requested, arrive] {
    if (registry_ && from != to) {
      const grid::Link& link = grid_.link(from, to);
      const double nominal = link.latency() + bytes / link.bandwidth();
      if (nominal > 0.0) {
        // Observed end-to-end time over the catalog (uncongested) time.
        // Includes queueing delay under serialize_links — the monitor
        // sees exactly what the application sees.
        registry_->record({monitor::SensorKind::kLinkInflation, from, to},
                          arrive, (arrive - requested) / nominal);
      }
    }
    if (task.stage == profile_.num_stages()) {
      complete_item(task);  // sink delivery
    } else {
      enqueue_task(to, task);
    }
  });
}

void PipelineSim::complete_item(const Task& task) {
  metrics_.on_item_completed(task.item, sim_.now(), task.created_at);
  obs::record_span(config_.obs.tracer, obs::SpanKind::kItem, "item",
                   task.created_at, sim_.now() - task.created_at, 0,
                   task.item);
  if (obs_metrics_.items_completed) {
    obs_metrics_.items_completed->add(1);
    obs_metrics_.item_latency->record(sim_.now() - task.created_at);
  }
  --in_flight_;
  if (config_.arrivals == SimConfig::Arrivals::kSaturated &&
      next_item_ < config_.num_items) {
    admit_next_item();  // closed loop: a completion frees a credit
  } else if (finished()) {
    sim_.stop();
  }
}

void PipelineSim::schedule_probe() {
  sim_.after(config_.probe_interval, [this] {
    if (finished() || !registry_) return;
    const double t = sim_.now();
    for (grid::NodeId n = 0; n < grid_.num_nodes(); ++n) {
      const double noise =
          1.0 + config_.probe_noise * util::normal(rng_, 0.0, 1.0);
      const double obs =
          std::max(1e-9, grid_.effective_speed(n, t) * std::max(0.1, noise));
      registry_->record({monitor::SensorKind::kNodeSpeed, n, 0}, t, obs);
    }
    for (grid::NodeId a = 0; a < grid_.num_nodes(); ++a) {
      for (grid::NodeId b = 0; b < grid_.num_nodes(); ++b) {
        if (a == b) continue;
        const double noise =
            1.0 + config_.probe_noise * util::normal(rng_, 0.0, 1.0);
        const double inflation =
            std::max(0.01, (1.0 + grid_.link(a, b).congestion_at(t)) *
                               std::max(0.1, noise));
        registry_->record({monitor::SensorKind::kLinkInflation, a, b}, t,
                          inflation);
      }
    }
    schedule_probe();
  });
}

void PipelineSim::apply_mapping(const sched::Mapping& new_mapping,
                                double pause) {
  new_mapping.validate(grid_.num_nodes());
  if (new_mapping.num_stages() != profile_.num_stages()) {
    throw std::invalid_argument("apply_mapping: stage count mismatch");
  }
  if (pause < 0.0) throw std::invalid_argument("apply_mapping: pause < 0");

  RemapEvent event;
  event.time = sim_.now();
  event.pause = pause;
  event.from = mapping_.to_string();
  event.to = new_mapping.to_string();
  metrics_.on_remap(std::move(event));

  // Collect queued tasks — and, under restart semantics, abort and
  // collect the in-service ones too — for redirection.
  std::vector<Task> pending;
  for (NodeState& state : nodes_) {
    pending.insert(pending.end(), state.queue.begin(), state.queue.end());
    state.queue.clear();
    if (config_.abort_in_service_on_remap && state.busy) {
      ++state.service_seq;  // voids the scheduled completion event
      state.busy = false;
      pending.push_back(state.in_service);
    }
  }
  // Stable order: by item id, so FIFO per stage is preserved.
  std::sort(pending.begin(), pending.end(),
            [](const Task& a, const Task& b) { return a.item < b.item; });

  mapping_ = new_mapping;
  router_.reset(profile_.num_stages());
  freeze_until_ = sim_.now() + pause;

  for (const Task& task : pending) {
    const std::size_t stage =
        std::min(task.stage, profile_.num_stages() - 1);
    nodes_[pick_replica(stage)].queue.push_back(task);
  }
  // Wake every node when the freeze lifts (also handles pause == 0).
  sim_.at(freeze_until_, [this] {
    for (grid::NodeId n = 0; n < nodes_.size(); ++n) try_start(n);
  });
}

}  // namespace gridpipe::sim
