#include "sim/metrics.hpp"

#include <stdexcept>

namespace gridpipe::sim {

void SimMetrics::on_item_created(std::uint64_t, double) { ++created_; }

void SimMetrics::on_item_completed(std::uint64_t id, double t,
                                   double created_at) {
  ++completed_;
  makespan_ = t;
  latency_.add(t - created_at);
  latencies_.push_back(t - created_at);
  completions_.add(t, static_cast<double>(id));
}

void SimMetrics::on_remap(RemapEvent event) {
  remaps_.push_back(std::move(event));
}

void SimMetrics::on_service(std::size_t stage, double duration) {
  if (stage >= per_stage_service_.size()) {
    per_stage_service_.resize(stage + 1);
  }
  per_stage_service_[stage].add(duration);
}

double SimMetrics::mean_throughput() const noexcept {
  return makespan_ > 0.0 ? static_cast<double>(completed_) / makespan_ : 0.0;
}

const util::RunningStats& SimMetrics::service_time(std::size_t stage) const {
  if (stage >= per_stage_service_.size()) {
    throw std::out_of_range("SimMetrics::service_time");
  }
  return per_stage_service_[stage];
}

}  // namespace gridpipe::sim
