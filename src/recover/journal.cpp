#include "recover/journal.hpp"

namespace gridpipe::recover {

void ReplayJournal::admit(std::uint64_t seq, ByteSpan payload, double now) {
  Entry& entry = live_[seq];
  entry.seq = seq;
  entry.payload.assign(payload.begin(), payload.end());
  entry.admitted_at = now;
}

bool ReplayJournal::retire(std::uint64_t seq) {
  return live_.erase(seq) > 0;
}

std::vector<std::uint64_t> ReplayJournal::live_seqs() const {
  std::vector<std::uint64_t> out;
  out.reserve(live_.size());
  for (const auto& [seq, entry] : live_) out.push_back(seq);
  return out;
}

const ReplayJournal::Entry* ReplayJournal::find(std::uint64_t seq) const {
  const auto it = live_.find(seq);
  return it == live_.end() ? nullptr : &it->second;
}

void ReplayJournal::note_replay(std::uint64_t seq) {
  ++total_replays_;
  const auto it = live_.find(seq);
  if (it != live_.end()) ++it->second.replays;
}

}  // namespace gridpipe::recover
