#include "recover/supervisor.hpp"

namespace gridpipe::recover {

void Supervisor::reset(RespawnPolicy policy, std::size_t nodes) {
  policy_ = policy;
  nodes_.assign(nodes, NodeState{});
  for (NodeState& node : nodes_) node.next_backoff_ms = policy_.backoff_ms;
  total_respawns_ = 0;
}

Supervisor::Action Supervisor::on_death(std::size_t node) {
  if (node >= nodes_.size()) return {ActionKind::kFail, 0.0};
  NodeState& state = nodes_[node];
  if (state.respawns < policy_.max_respawns) {
    Action action{ActionKind::kRespawn, state.next_backoff_ms};
    ++state.respawns;
    ++total_respawns_;
    state.next_backoff_ms *= policy_.backoff_multiplier;
    return action;
  }
  return {policy_.degrade_on_exhaust ? ActionKind::kDegrade
                                     : ActionKind::kFail,
          0.0};
}

void Supervisor::on_arrival(std::size_t node) {
  if (node >= nodes_.size()) return;
  nodes_[node] = NodeState{};
  nodes_[node].next_backoff_ms = policy_.backoff_ms;
}

std::size_t Supervisor::respawns(std::size_t node) const {
  return node < nodes_.size() ? nodes_[node].respawns : 0;
}

}  // namespace gridpipe::recover
