#include "recover/fault.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "util/rng.hpp"

namespace gridpipe::recover {

namespace {

/// One uniform draw in [0, 1) hashed from the tuple identifying a task
/// execution attempt. splitmix64 over the mixed-in fields keeps the
/// draw independent per field without carrying generator state.
double hashed_uniform(std::uint64_t seed, std::uint32_t node,
                      std::uint64_t item, std::uint32_t stage,
                      std::uint32_t incarnation) noexcept {
  std::uint64_t state = seed;
  (void)util::splitmix64(state);
  state ^= 0x632BE59BD9B4E019ULL * (node + 1);
  (void)util::splitmix64(state);
  state ^= 0x9E3779B97F4A7C15ULL * (item + 1);
  (void)util::splitmix64(state);
  state ^= 0xD1B54A32D192ED03ULL * (stage + 1);
  (void)util::splitmix64(state);
  state ^= 0x2545F4914F6CDD1DULL * (incarnation + 1);
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("fault plan: bad " + std::string(what) +
                                " '" + std::string(text) + "'");
  }
  return value;
}

double parse_rate(std::string_view text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size() || value < 0.0 || value >= 1.0) {
      throw std::invalid_argument("");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: rate must be in [0, 1), got '" +
                                std::string(text) + "'");
  }
}

}  // namespace

bool FaultPlan::should_die(std::uint32_t node, std::uint64_t item,
                           std::uint32_t stage,
                           std::uint32_t incarnation) const noexcept {
  if (incarnation == 0) {
    for (const KillPoint& kp : kills) {
      if (kp.node == node && kp.item == item) return true;
    }
  }
  if (kill_rate > 0.0 &&
      hashed_uniform(seed, node, item, stage, incarnation) < kill_rate) {
    return true;
  }
  return false;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view term = spec.substr(pos, end - pos);
    pos = end + 1;
    if (term.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    const std::size_t eq = term.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault plan: term '" + std::string(term) +
                                  "' is not key=value");
    }
    const std::string_view key = term.substr(0, eq);
    const std::string_view value = term.substr(eq + 1);
    if (key == "kill") {
      const std::size_t at = value.find('@');
      if (at == std::string_view::npos) {
        throw std::invalid_argument(
            "fault plan: kill wants NODE@ITEM, got '" + std::string(value) +
            "'");
      }
      KillPoint kp;
      kp.node = static_cast<std::uint32_t>(
          parse_u64(value.substr(0, at), "kill node"));
      kp.item = parse_u64(value.substr(at + 1), "kill item");
      plan.kills.push_back(kp);
    } else if (key == "rate") {
      plan.kill_rate = parse_rate(value);
    } else if (key == "seed") {
      plan.seed = parse_u64(value, "seed");
    } else {
      throw std::invalid_argument("fault plan: unknown key '" +
                                  std::string(key) +
                                  "' (want kill|rate|seed)");
    }
    if (end == spec.size()) break;
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[64];
  for (const KillPoint& kp : kills) {
    std::snprintf(buf, sizeof(buf), "kill=%u@%llu", kp.node,
                  static_cast<unsigned long long>(kp.item));
    if (!out.empty()) out += ';';
    out += buf;
  }
  if (kill_rate > 0.0) {
    std::snprintf(buf, sizeof(buf), "rate=%g", kill_rate);
    if (!out.empty()) out += ';';
    out += buf;
  }
  if (seed != 1) {
    std::snprintf(buf, sizeof(buf), "seed=%llu",
                  static_cast<unsigned long long>(seed));
    if (!out.empty()) out += ';';
    out += buf;
  }
  return out;
}

}  // namespace gridpipe::recover
