#pragma once
// recover::FaultPlan — deterministic fault injection for the process
// substrate, so recovery is testable and benchable instead of "works on
// my crash".
//
// A plan is evaluated *inside each worker* right before it would execute
// a task: if the plan says die, the worker records a flight event and
// SIGKILLs itself, so from the parent's point of view the failure is
// indistinguishable from a real node loss — the item is genuinely lost
// in flight, the socket EOFs, and the recovery machinery has to earn the
// golden-output parity the tests assert.
//
// Two shapes compose:
//  * kill points — "node N dies when it first sees item K" (several
//    points with the same item model correlated failures). Kill points
//    fire only in a worker's first incarnation, so a respawned node
//    does not re-die on the replayed item and a benchmark measures one
//    clean recovery.
//  * kill rate — every (node, item, stage) draw dies with probability
//    `kill_rate`, hashed from `seed` so a run is reproducible. The
//    incarnation number salts the hash: a replay after a respawn
//    re-rolls instead of deterministically re-dying, so a rate plan
//    converges instead of livelocking a node.
//
// The textual spec ("kill=1@20;kill=2@20;rate=0.01;seed=7") is what
// `gridpipe_cli --inject-fault` parses; to_string round-trips it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridpipe::recover {

struct FaultPlan {
  struct KillPoint {
    std::uint32_t node = 0;
    std::uint64_t item = 0;  ///< die before executing this item (any stage)
    friend bool operator==(const KillPoint&, const KillPoint&) = default;
  };

  std::vector<KillPoint> kills;
  double kill_rate = 0.0;  ///< per-task death probability in [0, 1)
  std::uint64_t seed = 1;  ///< hash seed for the rate draws

  bool any() const noexcept { return !kills.empty() || kill_rate > 0.0; }

  /// True when `node` (in its `incarnation`-th life, 0 = original fork)
  /// should die instead of executing `item` at `stage`. Pure function of
  /// its arguments — both sides of a fork agree.
  bool should_die(std::uint32_t node, std::uint64_t item, std::uint32_t stage,
                  std::uint32_t incarnation) const noexcept;

  /// Parses the CLI grammar: ';'- or ','-separated terms, each one of
  ///   kill=NODE@ITEM   a deterministic kill point (repeatable)
  ///   rate=P           per-task death probability
  ///   seed=S           hash seed for rate draws
  /// Throws std::invalid_argument with a pointed message on bad input.
  static FaultPlan parse(std::string_view spec);

  std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace gridpipe::recover
