#pragma once
// recover::ReplayJournal — the at-least-once half of fault tolerance.
//
// The parent records every admitted item (seq, encoded payload copy,
// admission vtime) and retires the entry when the item's result reaches
// the ordered output buffer. Between those two moments the item is *in
// flight*: its bytes may live in a worker's queue, a shm ring, a socket
// buffer, or a CPU register of a process that just took a SIGKILL. When
// a node dies, everything still live in the journal is re-admitted from
// stage 0 — re-execution is at-least-once, and the ordered output
// buffer's seq-keyed dedup (core::OrderedDedupBuffer) turns that into
// exactly-once delivery.
//
// retire() doubles as the duplicate detector: a result whose seq is no
// longer live is a replay that raced the original to completion, and
// the caller drops it. Not internally synchronized — owned by the
// controller thread, like the executor's admission state.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace gridpipe::recover {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

class ReplayJournal {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    Bytes payload;            ///< encoded stage-0 input, owned copy
    double admitted_at = 0.0; ///< virtual time of first admission
    std::uint32_t replays = 0;
  };

  /// Records an admission (copies the payload). A seq is admitted once;
  /// replays go through replaying() + note_replay instead.
  void admit(std::uint64_t seq, ByteSpan payload, double now);

  /// Removes the entry for `seq`. Returns false when the seq is not
  /// live — i.e. the caller is looking at a duplicate delivery.
  bool retire(std::uint64_t seq);

  bool contains(std::uint64_t seq) const {
    return live_.find(seq) != live_.end();
  }
  std::size_t live() const noexcept { return live_.size(); }
  bool empty() const noexcept { return live_.empty(); }
  void clear() { live_.clear(); }

  /// Live seqs in ascending order (replay preserves admission order).
  std::vector<std::uint64_t> live_seqs() const;

  /// The live entry for `seq`; nullptr when retired. Bumps nothing.
  const Entry* find(std::uint64_t seq) const;

  /// Marks one more re-execution of `seq` (statistics only).
  void note_replay(std::uint64_t seq);

  /// Total re-admissions across all entries, including retired ones.
  std::uint64_t total_replays() const noexcept { return total_replays_; }

 private:
  std::map<std::uint64_t, Entry> live_;
  std::uint64_t total_replays_ = 0;
};

}  // namespace gridpipe::recover
