#pragma once
// recover::Supervisor — the policy half of worker churn: given "node N
// just died", decide between respawning it (up to a budget, with
// exponential backoff) and degrading the session to the surviving grid.
//
// The supervisor is pure bookkeeping — it never forks or signals. The
// process executor asks it what to do, sleeps out the backoff on its
// poll clock, and reports arrivals back so a revived node's budget
// resets. Keeping the policy separate from the mechanism means the
// tests can pin the decision table without a single fork.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "recover/fault.hpp"

namespace gridpipe::recover {

struct RespawnPolicy {
  /// Respawn a dead node at most this many times before degrading (or
  /// failing). 0 = never respawn: degrade on the first death.
  std::size_t max_respawns = 3;
  /// Real milliseconds before the first respawn of a node; doubles per
  /// subsequent respawn of the same node. 0 = respawn immediately.
  double backoff_ms = 0.0;
  double backoff_multiplier = 2.0;
  /// When a node exhausts its respawn budget: true → drop the node and
  /// remap around the survivors; false → fail the run (the pre-recovery
  /// behavior, surfaced through report()).
  bool degrade_on_exhaust = true;

  friend bool operator==(const RespawnPolicy&, const RespawnPolicy&) = default;
};

/// Everything the runtime layer needs to turn recovery on: the policy,
/// and the faults to inject (empty plan = none).
struct RecoveryOptions {
  /// Master switch. Off (the default) preserves the historical contract:
  /// any worker death fails the run with a crash error.
  bool enabled = false;
  RespawnPolicy respawn{};
  FaultPlan faults{};
};

class Supervisor {
 public:
  enum class ActionKind {
    kRespawn,  ///< fork a replacement after `delay_ms`
    kDegrade,  ///< drop the node, remap around survivors
    kFail,     ///< budget exhausted and degrade disabled: fail the run
  };
  struct Action {
    ActionKind kind = ActionKind::kFail;
    double delay_ms = 0.0;  ///< backoff before the respawn fork
  };

  Supervisor() = default;
  Supervisor(RespawnPolicy policy, std::size_t nodes) { reset(policy, nodes); }

  void reset(RespawnPolicy policy, std::size_t nodes);

  /// Consumes one death of `node` and returns the decision. Respawn
  /// decisions consume budget immediately (the fork may still fail, in
  /// which case the executor reports the next death right back).
  Action on_death(std::size_t node);

  /// A node (re)joined outside the respawn path — reset its budget so a
  /// long-lived session survives repeated, well-separated churn.
  void on_arrival(std::size_t node);

  std::size_t respawns(std::size_t node) const;
  std::uint64_t total_respawns() const noexcept { return total_respawns_; }
  const RespawnPolicy& policy() const noexcept { return policy_; }

 private:
  struct NodeState {
    std::size_t respawns = 0;
    double next_backoff_ms = 0.0;
  };

  RespawnPolicy policy_{};
  std::vector<NodeState> nodes_;
  std::uint64_t total_respawns_ = 0;
};

}  // namespace gridpipe::recover
