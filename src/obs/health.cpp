#include "obs/health.hpp"

#include <cstring>
#include <stdexcept>

#include <sys/resource.h>

namespace gridpipe::obs {

namespace {

template <class T>
void append_pod(Bytes& out, T v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(v));
  std::memcpy(out.data() + off, &v, sizeof(v));
}

template <class T>
T read_pod(ByteSpan in, std::size_t& off) {
  T v;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

}  // namespace

Bytes encode_health(const HealthRecord& record) {
  Bytes out;
  encode_health_into(out, record);
  return out;
}

void encode_health_into(Bytes& out, const HealthRecord& record) {
  append_pod(out, record.node);
  append_pod(out, record.time);
  append_pod(out, record.last_progress);
  append_pod(out, record.tasks_executed);
  append_pod(out, record.queue_depth);
  append_pod(out, record.ring_bytes);
  append_pod(out, record.rss_kb);
}

HealthRecord decode_health(ByteSpan wire) {
  if (wire.size() != kHealthWireBytes) {
    throw std::invalid_argument("health: wrong payload size");
  }
  std::size_t off = 0;
  HealthRecord record;
  record.node = read_pod<std::uint32_t>(wire, off);
  record.time = read_pod<double>(wire, off);
  record.last_progress = read_pod<double>(wire, off);
  record.tasks_executed = read_pod<std::uint64_t>(wire, off);
  record.queue_depth = read_pod<std::uint32_t>(wire, off);
  record.ring_bytes = read_pod<std::uint64_t>(wire, off);
  record.rss_kb = read_pod<std::uint64_t>(wire, off);
  return record;
}

std::uint64_t self_rss_kb() noexcept {
  rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux (bytes on some BSDs; close enough
  // for a health signal).
  return usage.ru_maxrss > 0 ? static_cast<std::uint64_t>(usage.ru_maxrss)
                             : 0;
}

// -------------------------------------------------------- HealthTracker

void HealthTracker::reset(std::size_t nodes, double now) {
  nodes_.assign(nodes, Node{});
  for (Node& node : nodes_) node.last_seen = now;
}

void HealthTracker::on_frame(std::size_t node, double now) {
  if (node >= nodes_.size()) return;
  nodes_[node].last_seen = now;
}

void HealthTracker::on_health(const HealthRecord& record, double now) {
  if (record.node >= nodes_.size()) return;
  Node& node = nodes_[record.node];
  node.last = record;
  node.last_seen = now;
}

void HealthTracker::set_down(std::size_t node, bool down) {
  if (node >= nodes_.size()) return;
  nodes_[node].down = down;
}

void HealthTracker::on_respawn(std::size_t node, double now) {
  if (node >= nodes_.size()) return;
  Node& state = nodes_[node];
  const std::uint64_t stalls = state.stall_count;
  state = Node{};
  state.last_seen = now;
  state.stall_count = stalls;
}

std::vector<HealthTracker::Transition> HealthTracker::check(
    double now, double stall_after) {
  std::vector<Transition> out;
  if (stall_after <= 0.0) return out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (node.down) continue;  // known-dead: not a stall, a supervised outage
    const double silent = now - node.last_seen;
    // No-progress: the worker still heartbeats but reports work queued
    // and a last-progress timestamp that stopped advancing. The record
    // must be *fresh* (a heartbeat within the stall window): a stale
    // no-progress record otherwise pins the node stalled forever, which
    // both misreports a worker that resumed and eats the next stall's
    // edge (the transition can never re-fire).
    const bool wedged = node.last.time > 0.0 &&
                        now - node.last.time <= stall_after &&
                        node.last.queue_depth > 0 &&
                        node.last.time - node.last.last_progress > stall_after;
    const bool stalled = silent > stall_after || wedged;
    if (stalled != node.stalled) {
      node.stalled = stalled;
      if (stalled) ++node.stall_count;
      out.push_back({static_cast<std::uint32_t>(i), stalled, silent,
                     wedged && silent <= stall_after});
    }
  }
  return out;
}

util::Json HealthTracker::to_json(double now) const {
  util::Json array = util::Json::array();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    util::Json entry = util::Json::object();
    entry["node"] = static_cast<std::uint64_t>(i);
    entry["last_seen"] = node.last_seen;
    entry["silent_for"] = now - node.last_seen;
    entry["stalled"] = node.stalled;
    entry["down"] = node.down;
    entry["stall_count"] = node.stall_count;
    if (node.last.time > 0.0) {
      entry["sampled_at"] = node.last.time;
      entry["last_progress"] = node.last.last_progress;
      entry["tasks_executed"] = node.last.tasks_executed;
      entry["queue_depth"] = node.last.queue_depth;
      entry["ring_bytes"] = node.last.ring_bytes;
      entry["rss_kb"] = node.last.rss_kb;
    }
    array.push_back(std::move(entry));
  }
  return array;
}

}  // namespace gridpipe::obs
