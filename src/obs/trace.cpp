#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "util/json.hpp"

namespace gridpipe::obs {

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kItem:  return "item";
    case SpanKind::kStage: return "stage";
    case SpanKind::kWire:  return "wire";
    case SpanKind::kWait:  return "wait";
    case SpanKind::kEpoch: return "epoch";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kAdmit: return "admit";
    case SpanKind::kOther: return "other";
  }
  return "?";
}

void Tracer::record(TraceEvent event) {
  const util::MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::record_batch(std::vector<TraceEvent> events) {
  const util::MutexLock lock(mutex_);
  if (events_.empty()) {
    events_ = std::move(events);
  } else {
    events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
  }
}

std::size_t Tracer::size() const {
  const util::MutexLock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const util::MutexLock lock(mutex_);
  return events_;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();

  // Streamed by hand rather than built as one util::Json tree: traces
  // can run to hundreds of thousands of events.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata first, so Perfetto labels the lanes.
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"gridpipe\"}}";
  first = false;
  for (const std::uint32_t tid : tids) {
    os << ",{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (tid == 0) {
      os << "controller";
    } else {
      os << "node " << (tid - 1);
    }
    os << "\"}}";
  }

  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << util::json_escape(e.name) << "\",\"cat\":\""
       << to_string(e.kind) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":";
    util::Json(e.start * 1e6).dump(os);
    os << ",\"dur\":";
    util::Json(std::max(e.duration, 0.0) * 1e6).dump(os);
    bool args = false;
    if (e.item != kNoItem) {
      os << ",\"args\":{\"item\":" << e.item;
      args = true;
    }
    if (e.stage != kNoStage) {
      os << (args ? "," : ",\"args\":{") << "\"stage\":" << e.stage;
      args = true;
    }
    if (args) os << '}';
    os << '}';
  }
  os << "]}\n";
}

}  // namespace gridpipe::obs
