#include "obs/status.hpp"

#include <exception>

namespace gridpipe::obs {

StatusHub& StatusHub::global() {
  static StatusHub hub;
  return hub;
}

int StatusHub::add(std::string name, Provider provider) {
  util::MutexLock lock(mutex_);
  const int id = next_id_++;
  entries_.push_back({id, std::move(name), std::move(provider)});
  return id;
}

void StatusHub::remove(int id) {
  util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t StatusHub::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

util::Json StatusHub::snapshot() const {
  util::Json doc = util::Json::object();
  util::Json sessions = util::Json::array();
  {
    util::MutexLock lock(mutex_);
    for (const Entry& entry : entries_) {
      util::Json item = util::Json::object();
      item["name"] = entry.name;
      try {
        item["status"] = entry.provider();
      } catch (const std::exception& e) {
        item["error"] = e.what();
      } catch (...) {
        item["error"] = "unknown provider failure";
      }
      sessions.push_back(std::move(item));
    }
  }
  doc["sessions"] = std::move(sessions);
  return doc;
}

std::string StatusHub::snapshot_json() const { return snapshot().dump(2); }

}  // namespace gridpipe::obs
