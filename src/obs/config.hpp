#pragma once
// obs::Config — the user-facing observability switch carried inside
// rt::RuntimeOptions. Owning (shared_ptr) so sessions can outlive the
// options struct that configured them; sinks() flattens to the nullable
// raw pointers the substrates branch on. Default-constructed Config =
// everything off = zero overhead.

#include <memory>

#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace gridpipe::obs {

struct Config {
  std::shared_ptr<Tracer> tracer;
  std::shared_ptr<MetricsRegistry> metrics;

  bool enabled() const noexcept {
    return tracer != nullptr || metrics != nullptr;
  }
  Sinks sinks() const noexcept { return Sinks{tracer.get(), metrics.get()}; }

  /// Both channels on — what `gridpipe_cli --trace-out --metrics-out`
  /// builds.
  static Config full() {
    Config c;
    c.tracer = std::make_shared<Tracer>();
    c.metrics = std::make_shared<MetricsRegistry>();
    return c;
  }
};

}  // namespace gridpipe::obs
