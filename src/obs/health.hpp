#pragma once
// Worker health — the liveness half of the forensic layer, and the
// direct precursor to the multi-host substrate's heartbeat/timeout
// (ROADMAP item 4).
//
// Children of the proc runtime periodically sample themselves into a
// HealthRecord (queue depth, ring occupancy, last-progress timestamp,
// rss, tasks executed) and ship it as a kHealth wire frame — piggybacked
// onto a task's outgoing train when one is due anyway, or sent from the
// idle poll loop on a timer, so an idle-but-alive worker still
// heartbeats. The parent's HealthTracker folds those records (plus the
// implicit liveness of *any* received frame) into per-node state and
// detects two stall shapes:
//
//  * silence   — no frame of any kind for longer than `stall_after`
//                virtual seconds (dead-but-undetected, wedged in a
//                stage, or livelocked off the socket);
//  * no-progress — heartbeats keep arriving but the worker reports a
//                nonempty queue and a last_progress timestamp older
//                than `stall_after` (alive but not working).
//
// Detection is edge-triggered: check() returns transitions (stalled ↔
// recovered), which the owner turns into log warnings, metrics counters
// and flight-recorder events — once per transition, not per poll tick.
//
// The codec follows the house payload rules: fixed-width little-endian
// fields, exact-size bounds check, std::invalid_argument on malformed
// bytes (a byte stream from another process is untrusted).

#include <cstdint>
#include <span>
#include <vector>

#include "util/json.hpp"

namespace gridpipe::obs {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

struct HealthRecord {
  std::uint32_t node = 0;
  double time = 0.0;           ///< virtual time when sampled
  double last_progress = 0.0;  ///< virtual time of the last finished task
  std::uint64_t tasks_executed = 0;
  std::uint32_t queue_depth = 0;  ///< frames buffered awaiting processing
  std::uint64_t ring_bytes = 0;   ///< occupancy across incoming shm rings
  std::uint64_t rss_kb = 0;       ///< resident set size, kilobytes

  friend bool operator==(const HealthRecord&, const HealthRecord&) = default;
};

/// Exact wire size of one record (fixed-size payload, no varints).
inline constexpr std::size_t kHealthWireBytes = 4 + 8 + 8 + 8 + 4 + 8 + 8;

Bytes encode_health(const HealthRecord& record);
/// Appends the encoding to `out` (typically a pooled buffer already
/// holding a frame header).
void encode_health_into(Bytes& out, const HealthRecord& record);
/// Throws std::invalid_argument unless exactly kHealthWireBytes.
HealthRecord decode_health(ByteSpan wire);

/// This process's resident set size in kilobytes (getrusage; 0 on
/// failure). Async-signal-safe enough for a worker's send path.
std::uint64_t self_rss_kb() noexcept;

/// Parent-side per-node liveness state. NOT internally synchronized:
/// the owner (a single controller thread, or a caller holding the
/// executor's status mutex) serializes access.
class HealthTracker {
 public:
  struct Node {
    HealthRecord last{};     ///< latest health record (last.time==0: none)
    double last_seen = 0.0;  ///< virtual time of the last frame, any kind
    bool stalled = false;
    bool down = false;       ///< known-dead (awaiting respawn/degrade)
    std::uint64_t stall_count = 0;  ///< transitions into stalled
  };

  /// One edge of the stall predicate flipping for one node.
  struct Transition {
    std::uint32_t node = 0;
    bool stalled = false;     ///< new state
    double silent_for = 0.0;  ///< virtual seconds since last frame
    bool no_progress = false; ///< tripped on the no-progress shape
  };

  HealthTracker() = default;

  /// (Re)starts tracking `nodes` workers, all last seen at `now`.
  void reset(std::size_t nodes, double now);

  /// Any frame from `node` proves liveness (health piggybacks for free).
  void on_frame(std::size_t node, double now);
  void on_health(const HealthRecord& record, double now);

  /// Marks a node known-dead (reaped by the supervisor, awaiting respawn
  /// or degrade): check() skips it, so a planned outage does not also
  /// surface as a stall.
  void set_down(std::size_t node, bool down);

  /// A respawned (or newly arrived) worker starts fresh: clears the
  /// stale record, the down flag, and the stalled latch — but keeps
  /// stall_count — so the replacement re-arms and a *new* stall
  /// re-triggers the worker_stalls edge.
  void on_respawn(std::size_t node, double now);

  /// Scans every node against `stall_after` (<= 0 disables detection)
  /// and returns the edge transitions since the last check.
  std::vector<Transition> check(double now, double stall_after);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Per-node health as a JSON array (for status snapshots).
  util::Json to_json(double now) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace gridpipe::obs
