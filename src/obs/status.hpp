#pragma once
// obs::StatusHub — live introspection without stopping the run. Any
// component with something to say (an executor's streaming session, a
// sim session, a future daemon) registers a provider that renders its
// current state as util::Json; snapshot() asks every live provider and
// assembles one document:
//
//   {
//     "sessions": [
//       { "name": "process", "status": { ...provider output... } },
//       ...
//     ]
//   }
//
// gridpipe_cli wires this to SIGUSR1 and `--status-out` so a running
// pipeline can be asked "what are you doing right now?" mid-stream; the
// per-executor providers answer with queue/credit state, the deployed
// mapping, controller progress and per-worker health.
//
// Synchronization: the hub's mutex is held across provider calls, so
// remove() (and therefore ~StatusRegistration) cannot return while a
// snapshot is still invoking the provider being removed — RAII members
// registered after the state they read are destroyed first and are
// lifetime-safe with no extra locking. Providers must therefore never
// call back into the hub. A throwing provider degrades to an "error"
// entry; a snapshot never throws.

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::obs {

class StatusHub {
 public:
  using Provider = std::function<util::Json()>;

  StatusHub() = default;
  StatusHub(const StatusHub&) = delete;
  StatusHub& operator=(const StatusHub&) = delete;

  /// The process-wide hub every session registers with by default.
  static StatusHub& global();

  /// Registers a provider; returns its id (always > 0).
  int add(std::string name, Provider provider);
  /// Unregisters; blocks until any in-flight snapshot left the provider.
  void remove(int id);

  std::size_t size() const;

  /// One status document over every registered provider, in
  /// registration order. Never throws: a provider failure becomes
  /// {"name": ..., "error": what()}.
  util::Json snapshot() const;
  /// snapshot().dump(2) — pretty, `python -m json.tool`-parseable.
  std::string snapshot_json() const;

 private:
  struct Entry {
    int id = 0;
    std::string name;
    Provider provider;
  };

  mutable util::Mutex mutex_;
  int next_id_ GRIDPIPE_GUARDED_BY(mutex_) = 1;
  std::vector<Entry> entries_ GRIDPIPE_GUARDED_BY(mutex_);
};

/// RAII registration on the global hub. Movable so sessions can store it
/// by value; the moved-from object is inert.
class StatusRegistration {
 public:
  StatusRegistration() = default;
  StatusRegistration(std::string name, StatusHub::Provider provider)
      : id_(StatusHub::global().add(std::move(name), std::move(provider))) {}
  ~StatusRegistration() { reset(); }

  StatusRegistration(StatusRegistration&& other) noexcept
      : id_(std::exchange(other.id_, 0)) {}
  StatusRegistration& operator=(StatusRegistration&& other) noexcept {
    if (this != &other) {
      reset();
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }
  StatusRegistration(const StatusRegistration&) = delete;
  StatusRegistration& operator=(const StatusRegistration&) = delete;

  void reset() {
    if (id_ != 0) StatusHub::global().remove(std::exchange(id_, 0));
  }

 private:
  int id_ = 0;
};

}  // namespace gridpipe::obs
