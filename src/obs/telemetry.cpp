#include "obs/telemetry.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gridpipe::obs {

namespace {

template <class T>
void append_pod(Bytes& out, T v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(v));
  std::memcpy(out.data() + off, &v, sizeof(v));
}

template <class T>
T read_pod(ByteSpan in, std::size_t& off) {
  if (in.size() - off < sizeof(T)) {
    throw std::invalid_argument("telemetry: truncated input");
  }
  T v;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

void append_name(Bytes& out, const std::string& name) {
  if (name.size() > kMaxTelemetryName) {
    throw std::invalid_argument("telemetry: name too long");
  }
  append_pod(out, static_cast<std::uint32_t>(name.size()));
  const std::size_t off = out.size();
  out.resize(off + name.size());
  std::memcpy(out.data() + off, name.data(), name.size());
}

std::string read_name(ByteSpan in, std::size_t& off) {
  const auto len = read_pod<std::uint32_t>(in, off);
  if (len > kMaxTelemetryName) {
    throw std::invalid_argument("telemetry: name length exceeds limit");
  }
  if (in.size() - off < len) {
    throw std::invalid_argument("telemetry: truncated name");
  }
  std::string name(reinterpret_cast<const char*>(in.data() + off), len);
  off += len;
  return name;
}

// Smallest possible encodings, for count-vs-remaining sanity checks.
constexpr std::size_t kMinEventBytes = 1 + 4 + 4 + 8 + 8 + 8 + 4;
constexpr std::size_t kMinCounterBytes = 4 + 8;
constexpr std::size_t kMinEpochBytes = 8 + 8 + 8 + 4 * 1 + 8 + 3 * 4;

}  // namespace

Bytes encode_telemetry(const TelemetryBatch& batch) {
  Bytes out;
  encode_telemetry_into(out, batch);
  return out;
}

void encode_telemetry_into(Bytes& out, const TelemetryBatch& batch) {
  append_pod(out, static_cast<std::uint32_t>(batch.events.size()));
  for (const TraceEvent& e : batch.events) {
    append_pod(out, static_cast<std::uint8_t>(e.kind));
    append_pod(out, e.tid);
    append_pod(out, e.stage);
    append_pod(out, e.item);
    append_pod(out, e.start);
    append_pod(out, e.duration);
    append_name(out, e.name);
  }
  append_pod(out, static_cast<std::uint32_t>(batch.counters.size()));
  for (const CounterDelta& c : batch.counters) {
    append_name(out, c.name);
    append_pod(out, c.delta);
  }
  // The epochs section is optional on the wire: written only when there
  // is something to say, so epoch-free batches (every per-task worker
  // flush) stay byte-identical to the pre-epochs encoding.
  if (!batch.epochs.empty()) {
    append_pod(out, static_cast<std::uint32_t>(batch.epochs.size()));
    for (const control::EpochRecord& e : batch.epochs) {
      append_pod(out, e.time);
      append_pod(out, e.deployed_estimate);
      append_pod(out, e.candidate_estimate);
      append_pod(out, static_cast<std::uint8_t>(e.decided));
      append_pod(out, static_cast<std::uint8_t>(e.remapped));
      append_pod(out, static_cast<std::uint8_t>(e.reason.gate_changed));
      append_pod(out, static_cast<std::uint8_t>(e.reason.searched));
      append_pod(out, e.reason.gain_ratio);
      append_name(out, e.reason.trigger);
      append_name(out, e.reason.mapper);
      append_name(out, e.reason.verdict);
    }
  }
}

TelemetryBatch decode_telemetry(ByteSpan wire) {
  TelemetryBatch batch;
  std::size_t off = 0;

  const auto n_events = read_pod<std::uint32_t>(wire, off);
  if (n_events > (wire.size() - off) / kMinEventBytes) {
    throw std::invalid_argument("telemetry: event count exceeds input");
  }
  batch.events.reserve(n_events);
  for (std::uint32_t i = 0; i < n_events; ++i) {
    TraceEvent e;
    const auto raw_kind = read_pod<std::uint8_t>(wire, off);
    if (raw_kind > static_cast<std::uint8_t>(SpanKind::kOther)) {
      throw std::invalid_argument("telemetry: unknown span kind");
    }
    e.kind = static_cast<SpanKind>(raw_kind);
    e.tid = read_pod<std::uint32_t>(wire, off);
    e.stage = read_pod<std::uint32_t>(wire, off);
    e.item = read_pod<std::uint64_t>(wire, off);
    e.start = read_pod<double>(wire, off);
    e.duration = read_pod<double>(wire, off);
    e.name = read_name(wire, off);
    batch.events.push_back(std::move(e));
  }

  const auto n_counters = read_pod<std::uint32_t>(wire, off);
  if (n_counters > (wire.size() - off) / kMinCounterBytes) {
    throw std::invalid_argument("telemetry: counter count exceeds input");
  }
  batch.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    CounterDelta c;
    c.name = read_name(wire, off);
    c.delta = read_pod<std::uint64_t>(wire, off);
    batch.counters.push_back(std::move(c));
  }

  // Optional epochs section: its absence (an older writer) means empty,
  // but once the count is present the section must decode cleanly.
  if (off != wire.size()) {
    const auto n_epochs = read_pod<std::uint32_t>(wire, off);
    if (n_epochs > (wire.size() - off) / kMinEpochBytes) {
      throw std::invalid_argument("telemetry: epoch count exceeds input");
    }
    batch.epochs.reserve(n_epochs);
    for (std::uint32_t i = 0; i < n_epochs; ++i) {
      control::EpochRecord e;
      e.time = read_pod<double>(wire, off);
      e.deployed_estimate = read_pod<double>(wire, off);
      e.candidate_estimate = read_pod<double>(wire, off);
      e.decided = read_pod<std::uint8_t>(wire, off) != 0;
      e.remapped = read_pod<std::uint8_t>(wire, off) != 0;
      e.reason.gate_changed = read_pod<std::uint8_t>(wire, off) != 0;
      e.reason.searched = read_pod<std::uint8_t>(wire, off) != 0;
      e.reason.gain_ratio = read_pod<double>(wire, off);
      e.reason.trigger = read_name(wire, off);
      e.reason.mapper = read_name(wire, off);
      e.reason.verdict = read_name(wire, off);
      batch.epochs.push_back(std::move(e));
    }
  }

  if (off != wire.size()) {
    throw std::invalid_argument("telemetry: trailing bytes");
  }
  return batch;
}

void apply_telemetry(const TelemetryBatch& batch, const Sinks& sinks) {
  if (sinks.metrics) {
    for (const CounterDelta& c : batch.counters) {
      if (c.delta) sinks.metrics->counter(c.name).add(c.delta);
    }
    Histogram& service = sinks.metrics->histogram(names::kStageService);
    for (const TraceEvent& e : batch.events) {
      if (e.kind == SpanKind::kStage) service.record(e.duration);
    }
    sinks.metrics->counter(names::kTelemetryBatches).add(1);
  }
  if (sinks.tracer && !batch.events.empty()) {
    sinks.tracer->record_batch(batch.events);
  }
  // Shipped epoch decisions become epoch spans on the local timeline
  // (the structured reason itself is for report/--explain-epochs
  // consumers, which read the decoded batch directly).
  if (sinks.tracer) {
    for (const control::EpochRecord& e : batch.epochs) {
      record_span(sinks.tracer, SpanKind::kEpoch, "epoch", e.time,
                  e.phases.total(), 0);
    }
  }
}

}  // namespace gridpipe::obs
