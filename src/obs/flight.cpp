#include "obs/flight.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include <sys/mman.h>

namespace gridpipe::obs {

namespace {

/// Lane regions are carved from one mapping at this alignment so two
/// lanes' headers never share a cache line (each lane has a different
/// writer thread/process).
constexpr std::size_t kLaneAlign = 64;

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

std::string format_f64_bits(std::uint64_t bits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", std::bit_cast<double>(bits));
  return buf;
}

}  // namespace

const char* to_string(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kNone:         return "none";
    case FlightKind::kTaskStart:    return "task-start";
    case FlightKind::kTaskDone:     return "task-done";
    case FlightKind::kFrameSend:    return "frame-send";
    case FlightKind::kFrameRecv:    return "frame-recv";
    case FlightKind::kRingPush:     return "ring-push";
    case FlightKind::kRingFallback: return "ring-fallback";
    case FlightKind::kCredit:       return "credit";
    case FlightKind::kAdmit:        return "admit";
    case FlightKind::kComplete:     return "complete";
    case FlightKind::kRemap:        return "remap";
    case FlightKind::kEpoch:        return "epoch";
    case FlightKind::kHeartbeat:    return "heartbeat";
    case FlightKind::kStall:        return "stall";
    case FlightKind::kClose:        return "close";
    case FlightKind::kError:        return "error";
    case FlightKind::kDeath:        return "death";
    case FlightKind::kRespawn:      return "respawn";
    case FlightKind::kReplay:       return "replay";
    case FlightKind::kDedup:        return "dedup";
  }
  return "?";
}

std::string format_event(const FlightEvent& e) {
  std::string out = to_string(e.kind);
  const auto num = [](std::uint64_t v) { return std::to_string(v); };
  switch (e.kind) {
    case FlightKind::kTaskStart:
      out += " stage=" + num(e.arg) + " item=" + num(e.a);
      break;
    case FlightKind::kTaskDone:
      out += " stage=" + num(e.arg) + " item=" + num(e.a) +
             " dur=" + format_f64_bits(e.b) + "s";
      break;
    case FlightKind::kFrameSend:
    case FlightKind::kFrameRecv:
      out += " kind=" + num(e.arg) + " bytes=" + num(e.a);
      break;
    case FlightKind::kRingPush:
    case FlightKind::kRingFallback:
      out += " dst=" + num(e.arg) + " bytes=" + num(e.a);
      break;
    case FlightKind::kCredit:
      out += " in-flight=" + num(e.a) + " window=" + num(e.b);
      break;
    case FlightKind::kAdmit:
    case FlightKind::kComplete:
      out += " item=" + num(e.a);
      break;
    case FlightKind::kRemap:
      out += " source=" + num(e.arg);
      break;
    case FlightKind::kEpoch:
      out += (e.arg & 1u) ? " decided" : " quiet";
      if (e.arg & 2u) out += " remapped";
      break;
    case FlightKind::kHeartbeat:
      out += " tasks=" + num(e.a) + " queue=" + num(e.b);
      break;
    case FlightKind::kStall:
      out += " node=" + num(e.arg) + " silent=" + format_f64_bits(e.b) + "s";
      break;
    case FlightKind::kError:
      out += " code=" + num(e.arg);
      break;
    case FlightKind::kDeath:
      out += " node=" + num(e.arg);
      if (e.a != 0 || e.b != 0) out += " item=" + num(e.a);
      break;
    case FlightKind::kRespawn:
      out += " node=" + num(e.arg) + " incarnation=" + num(e.a);
      break;
    case FlightKind::kReplay:
    case FlightKind::kDedup:
      out += " item=" + num(e.a);
      break;
    case FlightKind::kNone:
    case FlightKind::kClose:
      break;
  }
  return out;
}

std::string format_events(const std::vector<FlightEvent>& events) {
  std::string out;
  for (const FlightEvent& e : events) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "  [t=%.4fs] ", e.time);
    out += stamp;
    out += format_event(e);
    out += '\n';
  }
  return out;
}

// ----------------------------------------------------------- FlightRing

std::size_t FlightRing::region_bytes(std::size_t capacity) noexcept {
  return align_up(sizeof(Header) + capacity * sizeof(Slot), kLaneAlign);
}

FlightRing FlightRing::create(void* region, std::size_t capacity) noexcept {
  if (region == nullptr || capacity == 0) return {};
  auto* header = new (region) Header{};
  header->capacity = capacity;
  header->seq.store(0, std::memory_order_relaxed);
  FlightRing ring;
  ring.header_ = header;
  ring.slots_ = reinterpret_cast<Slot*>(static_cast<std::byte*>(region) +
                                        sizeof(Header));
  // Publish the magic last: attach() in another lane/process only trusts
  // a fully initialized header.
  header->magic = kMagic;
  return ring;
}

FlightRing FlightRing::attach(void* region) noexcept {
  if (region == nullptr) return {};
  auto* header = static_cast<Header*>(region);
  if (header->magic != kMagic || header->capacity == 0) return {};
  FlightRing ring;
  ring.header_ = header;
  ring.slots_ = reinterpret_cast<Slot*>(static_cast<std::byte*>(region) +
                                        sizeof(Header));
  return ring;
}

std::size_t FlightRing::capacity() const noexcept {
  return header_ ? static_cast<std::size_t>(header_->capacity) : 0;
}

std::uint64_t FlightRing::count() const noexcept {
  return header_ ? header_->seq.load(std::memory_order_acquire) : 0;
}

void FlightRing::record(FlightKind kind, double time, std::uint32_t arg,
                        std::uint64_t a, std::uint64_t b) noexcept {
  if (header_ == nullptr) return;
  const std::uint64_t seq = header_->seq.load(std::memory_order_relaxed);
  Slot& slot = slots_[seq % header_->capacity];
  slot.w[0].store(std::bit_cast<std::uint64_t>(time),
                  std::memory_order_relaxed);
  slot.w[1].store(static_cast<std::uint64_t>(kind) |
                      (static_cast<std::uint64_t>(arg) << 32),
                  std::memory_order_relaxed);
  slot.w[2].store(a, std::memory_order_relaxed);
  slot.w[3].store(b, std::memory_order_relaxed);
  header_->seq.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::tail(std::size_t max_events) const {
  std::vector<FlightEvent> out;
  if (header_ == nullptr) return out;
  const std::uint64_t seq = header_->seq.load(std::memory_order_acquire);
  const std::uint64_t cap = header_->capacity;
  const std::uint64_t n =
      std::min({seq, cap, static_cast<std::uint64_t>(max_events)});
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = seq - n; i < seq; ++i) {
    const Slot& slot = slots_[i % cap];
    FlightEvent e;
    e.time = std::bit_cast<double>(slot.w[0].load(std::memory_order_relaxed));
    const std::uint64_t kw = slot.w[1].load(std::memory_order_relaxed);
    const auto raw_kind = static_cast<std::uint32_t>(kw & 0xffffffffu);
    e.kind = raw_kind <= kMaxFlightKind ? static_cast<FlightKind>(raw_kind)
                                        : FlightKind::kNone;
    e.arg = static_cast<std::uint32_t>(kw >> 32);
    e.a = slot.w[2].load(std::memory_order_relaxed);
    e.b = slot.w[3].load(std::memory_order_relaxed);
    out.push_back(e);
  }
  return out;
}

// ------------------------------------------------------- FlightRecorder

FlightRecorder::FlightRecorder(std::size_t lanes,
                               std::size_t events_per_lane) {
  if (lanes == 0 || events_per_lane == 0) return;  // explicit off switch
  const std::size_t lane_bytes = FlightRing::region_bytes(events_per_lane);
  const std::size_t total = lane_bytes * lanes;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    throw std::runtime_error("FlightRecorder: mmap failed");
  }
  base_ = base;
  mapped_bytes_ = total;
  lanes_ = lanes;
  capacity_ = events_per_lane;
  lane_bytes_ = lane_bytes;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    FlightRing::create(static_cast<std::byte*>(base_) + lane * lane_bytes_,
                       events_per_lane);
  }
}

FlightRecorder::~FlightRecorder() {
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
}

FlightRecorder& FlightRecorder::operator=(FlightRecorder&& other) noexcept {
  if (this == &other) return *this;
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
  base_ = std::exchange(other.base_, nullptr);
  mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
  lanes_ = std::exchange(other.lanes_, 0);
  capacity_ = std::exchange(other.capacity_, 0);
  lane_bytes_ = std::exchange(other.lane_bytes_, 0);
  return *this;
}

FlightRing FlightRecorder::ring(std::size_t lane) const noexcept {
  if (base_ == nullptr || lane >= lanes_) return {};
  return FlightRing::attach(static_cast<std::byte*>(base_) +
                            lane * lane_bytes_);
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t lane,
                                              std::size_t max_events) const {
  return ring(lane).tail(max_events);
}

std::string FlightRecorder::format_tail(std::size_t lane,
                                        std::size_t max_events) const {
  return format_events(tail(lane, max_events));
}

}  // namespace gridpipe::obs
