#pragma once
// Telemetry batch codec — how dist workers and process-runtime children
// ship their spans and counter deltas to the controlling process, so
// one trace file covers parent + workers on one time base.
//
// The payload rides inside the existing transport envelopes (a
// comm::wire Frame of kind kTelemetry on sockets, a tag-6 message on
// the in-process communicator) and follows the same rules as the other
// five payload kinds: fixed-width little-endian fields, and a decoder
// that bounds-checks every length against the remaining input and
// throws std::invalid_argument on malformed bytes.
//
// Layout:
//   [u32 n_events]
//     n_events × [u8 kind][u32 tid][u32 stage][u64 item]
//                [f64 start][f64 duration][u32 name_len][name…]
//   [u32 n_counters]
//     n_counters × [u32 name_len][name…][u64 delta]
//   optional epochs section (absent on older writers = empty):
//   [u32 n_epochs]
//     n_epochs × [f64 time][f64 deployed][f64 candidate]
//                [u8 decided][u8 remapped][u8 gate_changed][u8 searched]
//                [f64 gain_ratio][name trigger][name mapper][name verdict]

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "control/epoch_record.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace gridpipe::obs {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

struct CounterDelta {
  std::string name;
  std::uint64_t delta = 0;
  friend bool operator==(const CounterDelta&, const CounterDelta&) = default;
};

struct TelemetryBatch {
  std::vector<TraceEvent> events;
  std::vector<CounterDelta> counters;
  /// Epoch decisions with their structured reasons. The section is
  /// written only when non-empty, so batches without epochs (every
  /// per-task worker flush) encode byte-identically to older writers.
  /// Note EpochRecord equality covers decision fields only, so the
  /// batch's operator== inherits that contract.
  std::vector<control::EpochRecord> epochs;

  bool empty() const noexcept {
    return events.empty() && counters.empty() && epochs.empty();
  }
  friend bool operator==(const TelemetryBatch&,
                         const TelemetryBatch&) = default;
};

/// No span or counter name may exceed this on the wire; a decoded
/// length above it is treated as garbage.
inline constexpr std::size_t kMaxTelemetryName = 4096;

Bytes encode_telemetry(const TelemetryBatch& batch);
/// Appends the encoding to `out` (typically a pooled buffer already
/// holding a frame header), avoiding a temporary per flush.
void encode_telemetry_into(Bytes& out, const TelemetryBatch& batch);
/// Throws std::invalid_argument on truncation, oversized names, bad
/// span kinds, or trailing bytes. Takes a view, so a frame payload can
/// be decoded in place.
TelemetryBatch decode_telemetry(ByteSpan wire);

/// Merge a decoded batch into local sinks: events append to the tracer,
/// stage-span durations additionally feed the stage-service histogram
/// (workers cannot ship a histogram, so the parent rebuilds it from
/// spans), counter deltas add into the registry.
void apply_telemetry(const TelemetryBatch& batch, const Sinks& sinks);

}  // namespace gridpipe::obs
