#pragma once
// obs::MetricsRegistry — named counters, gauges, and log-bucketed
// latency histograms shared by all four substrates.
//
// The hot path (Counter::add, Histogram::record) is a handful of
// relaxed atomic operations on pre-resolved handles: executors look the
// metric up once at construction and keep the reference, so no lock or
// map walk happens per item. Handles stay valid for the registry's
// lifetime (metrics are heap-allocated and never removed).
//
// Histograms bucket on a log scale — kSubBuckets buckets per octave —
// so p50/p90/p99/p999 come out of ~1k fixed counters instead of storing
// every sample. The representative value of a bucket is its midpoint:
// relative quantile error is bounded by 1/(2·kSubBuckets) ≈ 3%.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::obs {

/// Canonical metric names the substrates agree on, so RunReport
/// snapshots read uniformly across sim/threads/dist/process.
namespace names {
inline constexpr const char* kItemsPushed = "items_pushed";
inline constexpr const char* kItemsCompleted = "items_completed";
inline constexpr const char* kRemaps = "remaps";
inline constexpr const char* kEpochs = "epochs";
inline constexpr const char* kTelemetryBatches = "telemetry_batches";
inline constexpr const char* kHeartbeats = "heartbeats";
inline constexpr const char* kWorkerStalls = "worker_stalls";
inline constexpr const char* kItemLatency = "item_latency_seconds";
inline constexpr const char* kStageService = "stage_service_seconds";
inline constexpr const char* kEpochWall = "epoch_wall_seconds";
// Fault tolerance (process substrate with recovery enabled):
inline constexpr const char* kNodeLosses = "node_losses";
inline constexpr const char* kRespawns = "respawns";
inline constexpr const char* kItemsReplayed = "items_replayed";
inline constexpr const char* kItemsDeduped = "items_deduped";
inline constexpr const char* kRecoverySeconds = "recovery_seconds";
}  // namespace names

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  static constexpr int kSubBuckets = 16;  ///< buckets per octave
  static constexpr int kOctaves = 64;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSubBuckets) * kOctaves;
  /// Values at or below this land in bucket 0 (1 ns when recording
  /// seconds — far below anything the pipeline can resolve).
  static constexpr double kMinValue = 1e-9;

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// Smallest / largest recorded value (exact, not bucketed). 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

  /// Quantile estimate for p in [0, 100]; 0 when empty. Bucket-accurate
  /// (≈3% relative), clamped into [min(), max()].
  double percentile(double p) const noexcept;

  /// Bucketing scheme, exposed so tests can pin the error bound.
  static std::size_t bucket_index(double value) noexcept;
  static double bucket_value(std::size_t index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

// ------------------------------------------------------------ snapshot

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
  friend bool operator==(const CounterSnapshot&,
                         const CounterSnapshot&) = default;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
  friend bool operator==(const GaugeSnapshot&, const GaugeSnapshot&) = default;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Point-in-time copy of a registry, cheap to keep inside a RunReport.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  const CounterSnapshot* find_counter(std::string_view name) const noexcept;
  const HistogramSnapshot* find_histogram(std::string_view name) const noexcept;

  std::string to_json() const;  ///< pretty-printed JSON document

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

// ------------------------------------------------------------ registry

class MetricsRegistry {
 public:
  /// Find-or-create; the returned reference lives as long as the
  /// registry. Name lookup takes a mutex — resolve handles once, not
  /// per sample.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  template <class Map>
  auto& find_or_create(Map& map, std::string_view name)
      GRIDPIPE_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GRIDPIPE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GRIDPIPE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GRIDPIPE_GUARDED_BY(mutex_);
};

/// Pre-resolved handles for the standard per-run metrics. Substrates
/// bind once at construction; null registry → all handles null and
/// every record site reduces to one branch.
struct StandardMetrics {
  Counter* items_pushed = nullptr;
  Counter* items_completed = nullptr;
  Counter* remaps = nullptr;
  Counter* heartbeats = nullptr;
  Counter* worker_stalls = nullptr;
  Counter* node_losses = nullptr;
  Counter* respawns = nullptr;
  Counter* items_replayed = nullptr;
  Counter* items_deduped = nullptr;
  Histogram* item_latency = nullptr;
  Histogram* stage_service = nullptr;
  /// Virtual seconds from a worker-death detection until every item in
  /// flight at that moment had been delivered (one sample per recovery).
  Histogram* recovery_time = nullptr;

  void bind(MetricsRegistry* registry);
};

}  // namespace gridpipe::obs
