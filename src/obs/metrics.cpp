#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/json.hpp"

namespace gridpipe::obs {

namespace {

/// Relaxed CAS fold for atomic min/max over doubles.
template <class Better>
void fold_atomic(std::atomic<double>& slot, double value, Better better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(value, cur) &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  const double ratio = value / kMinValue;
  // Beyond double range the frexp decomposition (and the int cast below)
  // is meaningless; such a value is by definition off the top end.
  if (!std::isfinite(ratio)) return kNumBuckets - 1;
  int exp = 0;
  const double frac = std::frexp(ratio, &exp);
  // value/kMinValue = frac * 2^exp with frac in [0.5, 1), exp >= 1.
  int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  const long idx = static_cast<long>(exp - 1) * kSubBuckets + sub;
  return static_cast<std::size_t>(
      std::clamp(idx, 0L, static_cast<long>(kNumBuckets) - 1));
}

double Histogram::bucket_value(std::size_t index) noexcept {
  const std::size_t octave = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  const double base = kMinValue * std::ldexp(1.0, static_cast<int>(octave));
  // Bucket spans [base·(1 + sub/k), base·(1 + (sub+1)/k)); midpoint.
  return base * (1.0 + (static_cast<double>(sub) + 0.5) / kSubBuckets);
}

void Histogram::record(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First sample seeds min/max; racing recorders converge via the
    // folds below (min_ starts at 0.0, so fold min explicitly).
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  fold_atomic(min_, value, [](double a, double b) { return a < b; });
  fold_atomic(max_, value, [](double a, double b) { return a > b; });
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const noexcept {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::percentile(double p) const noexcept {
  std::array<std::uint64_t, kNumBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 · total), at least 1.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped / 100.0 * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      return std::clamp(bucket_value(i), min(), max());
    }
  }
  return max();
}

// ------------------------------------------------------------ registry

template <class Map>
auto& MetricsRegistry::find_or_create(Map& map, std::string_view name) {
  using T = typename Map::mapped_type::element_type;
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const util::MutexLock lock(mutex_);
  return find_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.mean = h->mean();
    hs.min = h->min();
    hs.max = h->max();
    hs.p50 = h->percentile(50.0);
    hs.p90 = h->percentile(90.0);
    hs.p99 = h->percentile(99.0);
    hs.p999 = h->percentile(99.9);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  util::Json root = util::Json::object();
  util::Json& jc = root["counters"];
  jc = util::Json::object();
  for (const CounterSnapshot& c : counters) jc[c.name] = c.value;
  util::Json& jg = root["gauges"];
  jg = util::Json::object();
  for (const GaugeSnapshot& g : gauges) jg[g.name] = g.value;
  util::Json& jh = root["histograms"];
  jh = util::Json::object();
  for (const HistogramSnapshot& h : histograms) {
    util::Json& j = jh[h.name];
    j["count"] = h.count;
    j["mean"] = h.mean;
    j["min"] = h.min;
    j["max"] = h.max;
    j["p50"] = h.p50;
    j["p90"] = h.p90;
    j["p99"] = h.p99;
    j["p999"] = h.p999;
  }
  return root.dump(2) + "\n";
}

void StandardMetrics::bind(MetricsRegistry* registry) {
  if (!registry) {
    *this = StandardMetrics{};
    return;
  }
  items_pushed = &registry->counter(names::kItemsPushed);
  items_completed = &registry->counter(names::kItemsCompleted);
  remaps = &registry->counter(names::kRemaps);
  heartbeats = &registry->counter(names::kHeartbeats);
  worker_stalls = &registry->counter(names::kWorkerStalls);
  node_losses = &registry->counter(names::kNodeLosses);
  respawns = &registry->counter(names::kRespawns);
  items_replayed = &registry->counter(names::kItemsReplayed);
  items_deduped = &registry->counter(names::kItemsDeduped);
  item_latency = &registry->histogram(names::kItemLatency);
  stage_service = &registry->histogram(names::kStageService);
  recovery_time = &registry->histogram(names::kRecoverySeconds);
}

}  // namespace gridpipe::obs
