#pragma once
// obs::Tracer — span collection exported as Chrome trace-event JSON
// (load the file in Perfetto or chrome://tracing).
//
// Timestamps are *virtual* seconds on the substrate's own clock: the
// DES event clock in the simulator, scaled wall time on the live
// runtimes. The process runtime's children inherit the parent's clock
// epoch across fork(), and the dist runtime's ranks share one process —
// so spans shipped over the wire land on the same time base as the
// parent's and one trace file tells a coherent story.
//
// Lane convention (tid): 0 is the controller/session lane (admit, wait,
// epoch and phase spans); worker node n records on lane 1 + n.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace gridpipe::obs {

enum class SpanKind : std::uint8_t {
  kItem = 0,   ///< whole item lifetime, admit → completion
  kStage = 1,  ///< one stage execution on a worker
  kWire = 2,   ///< serialize + wire hop to the next node
  kWait = 3,   ///< completed item parked in the ordered buffer
  kEpoch = 4,  ///< one controller run_epoch call
  kPhase = 5,  ///< controller phase within an epoch
  kAdmit = 6,  ///< item admitted into the window (instant)
  kOther = 7,
};

const char* to_string(SpanKind kind) noexcept;

inline constexpr std::uint64_t kNoItem = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoStage = ~std::uint32_t{0};

struct TraceEvent {
  std::string name;
  SpanKind kind = SpanKind::kOther;
  double start = 0.0;     ///< virtual seconds
  double duration = 0.0;  ///< virtual seconds (0 → instant event)
  std::uint32_t tid = 0;  ///< lane: 0 controller, 1 + node for workers
  std::uint64_t item = kNoItem;
  std::uint32_t stage = kNoStage;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Thread-safe span sink. `record` is virtual so tests can substitute an
/// instrumented sink that observes exactly what the hot paths emit.
class Tracer {
 public:
  Tracer() = default;
  virtual ~Tracer() = default;

  virtual void record(TraceEvent event);
  virtual void record_batch(std::vector<TraceEvent> events);

  std::size_t size() const;
  std::vector<TraceEvent> events() const;  ///< snapshot copy

  /// Chrome trace-event JSON ("X" complete events plus thread-name
  /// metadata). Valid standalone JSON — python -m json.tool parses it.
  void write_chrome_trace(std::ostream& os) const;

 private:
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ GRIDPIPE_GUARDED_BY(mutex_);
};

/// The one hot-path entry point: a single branch when `tracer` is null,
/// and `name` stays a const char* so the disabled path allocates nothing.
inline void record_span(Tracer* tracer, SpanKind kind, const char* name,
                        double start, double duration, std::uint32_t tid,
                        std::uint64_t item = kNoItem,
                        std::uint32_t stage = kNoStage) {
  if (!tracer) return;
  TraceEvent event;
  event.name = name;
  event.kind = kind;
  event.start = start;
  event.duration = duration;
  event.tid = tid;
  event.item = item;
  event.stage = stage;
  tracer->record(std::move(event));
}

}  // namespace gridpipe::obs
