#pragma once
// obs::FlightRecorder — the always-on forensic layer: a fixed-size
// lock-free event ring per execution lane (controller = lane 0, worker
// node n = lane 1 + n, mirroring the tracer's tid convention), recording
// the last few hundred things each lane did: task starts/finishes, frame
// sends/receives, ring pushes and socket fallbacks, credit-window
// changes, admissions, completions, remaps and epoch transitions.
//
// Unlike the Tracer (opt-in, unbounded, allocating), the flight recorder
// is on by default and costs a handful of relaxed atomic stores per
// event (~10 ns, measured in bench_m1_micro): events are 32-byte PODs
// written into a preallocated ring, so the hot path never allocates,
// never locks, and never branches on configuration beyond one null
// check. When something dies, the ring holds the story.
//
// The backing region is one mmap(MAP_SHARED | MAP_ANONYMOUS) mapping,
// exactly like proc::ShmRingMesh: the proc runtime constructs the
// recorder *before* forking its fleet, so every child writes its lane in
// pages the parent still sees — after a SIGKILL the parent reads the
// dead child's last events out of shared memory and attaches the decoded
// tail to the crash error. The in-process runtimes use the same mapping
// shape for uniformity (a MAP_SHARED mapping in one process is just
// memory).
//
// Concurrency contract: one writer per lane (structural, like the shm
// ring's SPSC pairing); readers may snapshot any lane at any time. The
// writer publishes each event with one release store of the sequence
// counter; a reader acquires the counter and walks backwards. A reader
// racing the live writer can observe a *torn event* in the oldest slot
// it reads (each 8-byte word is individually atomic, so this is benign
// data, never UB or a TSan report) — acceptable for forensics, where the
// newest events matter and the oldest slot is the one being recycled.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gridpipe::obs {

enum class FlightKind : std::uint32_t {
  kNone = 0,          ///< empty / torn slot
  kTaskStart = 1,     ///< arg = stage, a = item
  kTaskDone = 2,      ///< arg = stage, a = item, b = duration bits (f64)
  kFrameSend = 3,     ///< arg = wire frame kind, a = payload bytes
  kFrameRecv = 4,     ///< arg = wire frame kind, a = payload bytes
  kRingPush = 5,      ///< arg = destination node, a = frame bytes
  kRingFallback = 6,  ///< arg = destination node, a = frame bytes
  kCredit = 7,        ///< a = items in flight, b = window
  kAdmit = 8,         ///< a = item
  kComplete = 9,      ///< a = item
  kRemap = 10,        ///< arg = source (0 = controller decision, else node)
  kEpoch = 11,        ///< arg bit 0 = decided, bit 1 = remapped
  kHeartbeat = 12,    ///< a = tasks executed, b = queue depth
  kStall = 13,        ///< arg = node, b = silent-for bits (f64)
  kClose = 14,        ///< stream closed / shutdown observed
  kError = 15,        ///< arg = lane-specific error code
  kDeath = 16,        ///< arg = node; for an injected fault the dying
                      ///< worker also sets a = item it refused to run
  kRespawn = 17,      ///< arg = node, a = incarnation (1 = first respawn)
  kReplay = 18,       ///< a = item re-admitted from the journal
  kDedup = 19,        ///< a = item whose duplicate delivery was dropped
};
inline constexpr std::uint32_t kMaxFlightKind =
    static_cast<std::uint32_t>(FlightKind::kDedup);

const char* to_string(FlightKind kind) noexcept;

/// One decoded ring entry. `arg`/`a`/`b` are kind-dependent (see the
/// enum); times are virtual seconds on the owning substrate's clock.
struct FlightEvent {
  double time = 0.0;
  FlightKind kind = FlightKind::kNone;
  std::uint32_t arg = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};

/// "task-start stage=2 item=17" — one event, no timestamp prefix.
std::string format_event(const FlightEvent& event);
/// Multi-line human-readable dump, oldest first, each line prefixed with
/// the virtual timestamp. Empty string for no events.
std::string format_events(const std::vector<FlightEvent>& events);

/// Non-owning handle to one ring in a flight region. Valid across
/// fork(): the handle is plain pointers into a MAP_SHARED mapping.
/// Default-constructed handles are inert (record() is a no-op, tail()
/// is empty) so call sites never branch on "is the recorder on".
class FlightRing {
 public:
  FlightRing() = default;

  /// Raw bytes one ring of `capacity` events needs (header + slots).
  static std::size_t region_bytes(std::size_t capacity) noexcept;
  /// Initializes a ring over `region` (>= region_bytes(capacity) zeroed
  /// bytes, 8-byte aligned) and returns a handle.
  static FlightRing create(void* region, std::size_t capacity) noexcept;
  /// Handle to a previously create()d ring; invalid if the magic does
  /// not match (e.g. the region was never initialized).
  static FlightRing attach(void* region) noexcept;

  bool valid() const noexcept { return header_ != nullptr; }
  std::size_t capacity() const noexcept;
  /// Events ever recorded (not clamped to capacity).
  std::uint64_t count() const noexcept;

  /// The hot path: four relaxed stores + one release store. Single
  /// writer per ring; wait-free; never allocates.
  void record(FlightKind kind, double time, std::uint32_t arg = 0,
              std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

  /// Last min(count, capacity, max_events) events, oldest first. Safe
  /// from any thread/process; see the tearing caveat in the file header.
  std::vector<FlightEvent> tail(std::size_t max_events) const;

 private:
  struct Header {
    std::uint64_t magic = 0;
    std::uint64_t capacity = 0;  ///< slots
    std::atomic<std::uint64_t> seq;
  };
  struct Slot {
    std::atomic<std::uint64_t> w[4];
  };
  static constexpr std::uint64_t kMagic = 0x67706670'6c697465ULL;  // "gpfplite"

  Header* header_ = nullptr;
  Slot* slots_ = nullptr;
};

/// Owns one anonymous shared mapping holding `lanes` flight rings.
/// Construct before forking (proc runtime) so children write lanes the
/// parent can still read post-mortem; each process unmaps its own view.
/// A default-constructed recorder is valid-off: every ring() is inert.
/// Throws std::runtime_error if mmap fails (callers treat that as
/// "run without a flight recorder").
class FlightRecorder {
 public:
  FlightRecorder() = default;
  /// `events_per_lane` = 0 yields a disabled recorder (no mapping).
  FlightRecorder(std::size_t lanes, std::size_t events_per_lane);
  ~FlightRecorder();

  FlightRecorder(FlightRecorder&& other) noexcept { *this = std::move(other); }
  FlightRecorder& operator=(FlightRecorder&& other) noexcept;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool valid() const noexcept { return base_ != nullptr; }
  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t events_per_lane() const noexcept { return capacity_; }

  /// Handle to lane `lane`; inert when out of range or disabled.
  FlightRing ring(std::size_t lane) const noexcept;

  /// Decoded tail of one lane, oldest first.
  std::vector<FlightEvent> tail(std::size_t lane,
                                std::size_t max_events) const;
  /// format_events(tail(lane, max_events)).
  std::string format_tail(std::size_t lane, std::size_t max_events) const;

 private:
  void* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  std::size_t lanes_ = 0;
  std::size_t capacity_ = 0;
  std::size_t lane_bytes_ = 0;
};

/// Default ring size: 256 events × 32 B = 8 KB per lane. Enough to hold
/// the last dozen-or-so items' full event sequence on a worker lane.
inline constexpr std::size_t kDefaultFlightEvents = 256;

}  // namespace gridpipe::obs
