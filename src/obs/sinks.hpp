#pragma once
// obs::Sinks — the two nullable telemetry destinations threaded through
// every substrate. A null pointer means that channel is disabled, and
// every hot-path hook guards on exactly one pointer: the disabled cost
// is a single predictable branch, no allocation, no lock
// (test_obs.cpp's DisabledPathDoesNotAllocate pins this down).

namespace gridpipe::obs {

class Tracer;
class MetricsRegistry;

struct Sinks {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool any() const noexcept { return tracer != nullptr || metrics != nullptr; }
};

}  // namespace gridpipe::obs
